package synth

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"pipesyn/internal/enum"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/stagespec"
)

func lateStageSpec(t *testing.T) (stagespec.MDACSpec, *pdk.Process) {
	t.Helper()
	adc := stagespec.ADCSpec{Bits: 10, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	return specs[1], pdk.TSMC025()
}

func TestSynthesizeFindsFeasible(t *testing.T) {
	spec, proc := lateStageSpec(t)
	res, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 1, MaxEvals: 120, PatternIter: 60, Mode: hybrid.Hybrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("no feasible sizing found: %v", res.Report.Failures)
	}
	if res.Metrics.Power <= 0 {
		t.Fatalf("power = %g", res.Metrics.Power)
	}
	if res.Evals == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestSynthesizeReducesPower(t *testing.T) {
	// The optimizer should not end up more expensive than a feasible
	// start whose cost it was told to minimize.
	spec, proc := lateStageSpec(t)
	s0 := opamp.InitialSizing(proc, opamp.BlockSpec{
		GBW: spec.GBWMin, SR: spec.SRMin, CLoad: spec.CLoad,
		CFeed: spec.CFeed, Gain: spec.GainMin, Swing: spec.SwingMin,
	})
	ev := newEvaluator(spec, proc, hybrid.Hybrid, 10, nil, nil)
	start := ev.score(context.Background(), s0)
	res, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 3, MaxEvals: 150, PatternIter: 80, Mode: hybrid.Hybrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > start.cost*1.001 {
		t.Fatalf("optimizer worsened cost: %g → %g", start.cost, res.Cost)
	}
}

func TestWarmStartUsesFewerEvals(t *testing.T) {
	// Retargeting: synthesize a stage, then re-synthesize a neighbouring
	// spec seeded with the first result. The warm run must reach a
	// feasible point with far fewer evaluations (the paper's
	// "2–3 weeks → 1 day" effect).
	spec, proc := lateStageSpec(t)
	cold, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 5, MaxEvals: 150, PatternIter: 60, Mode: hybrid.Hybrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Feasible {
		t.Skip("cold run infeasible; retarget comparison not meaningful")
	}
	// Neighbouring spec: the same stage retargeted to 20% more bandwidth.
	spec2 := spec
	spec2.GBWMin *= 1.2
	warm, err := Synthesize(context.Background(), spec2, proc, Options{
		Seed: 6, MaxEvals: 150, PatternIter: 60, Mode: hybrid.Hybrid,
		WarmStart: cold.Sizing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Feasible {
		t.Fatalf("warm retarget infeasible: %v", warm.Report.Failures)
	}
	if warm.Evals >= cold.Evals {
		t.Fatalf("warm start spent %d evals, cold %d — retargeting saved nothing",
			warm.Evals, cold.Evals)
	}
}

// TestParallelRestartsMatchSerial: the restart fan-out reduces in
// restart order with per-restart seeds, so the worker count cannot
// change the outcome.
func TestParallelRestartsMatchSerial(t *testing.T) {
	spec, proc := lateStageSpec(t)
	base := Options{
		Seed: 17, MaxEvals: 500, PatternIter: 100,
		Mode: hybrid.EquationOnly, Restarts: 4,
	}
	serial, err := Synthesize(context.Background(), spec, proc, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		opts := base
		opts.Workers = workers
		par, err := Synthesize(context.Background(), spec, proc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d diverged: serial cost %.12g evals %d, parallel cost %.12g evals %d",
				workers, serial.Cost, serial.Evals, par.Cost, par.Evals)
		}
	}
}

// TestFailedRestartEvalsCounted: a restart that errors after burning
// evaluator calls must still contribute to Evals, and EvalsToFeasible of
// later restarts must be offset by that spent budget.
func TestFailedRestartEvalsCounted(t *testing.T) {
	orig := runRestart
	defer func() { runRestart = orig }()

	const failedEvals = 37
	var calls int
	runRestart = func(ctx context.Context, spec stagespec.MDACSpec, proc *pdk.Process, opts Options) (*Result, int, error) {
		calls++
		if calls == 1 {
			// First restart: dies mid-search with partial work spent.
			return nil, failedEvals, errors.New("injected restart failure")
		}
		return orig(ctx, spec, proc, opts)
	}

	spec, proc := lateStageSpec(t)
	res, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 23, MaxEvals: 300, PatternIter: 60,
		Mode: hybrid.EquationOnly, Restarts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("runRestart called %d times, want 2", calls)
	}

	// Reference: the surviving restart alone (restart index 1 has seed
	// base + 9973, reproduced here by shifting the base seed).
	alone, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 23 + 9973, MaxEvals: 300, PatternIter: 60,
		Mode: hybrid.EquationOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != alone.Evals+failedEvals {
		t.Fatalf("Evals = %d, want %d survivor evals + %d failed evals",
			res.Evals, alone.Evals, failedEvals)
	}
	if alone.EvalsToFeasible >= 0 && res.EvalsToFeasible != alone.EvalsToFeasible+failedEvals {
		t.Fatalf("EvalsToFeasible = %d, want %d offset by the %d failed evals",
			res.EvalsToFeasible, alone.EvalsToFeasible, failedEvals)
	}
}

// TestAllRestartsFailedSurfacesFirstError: when nothing survives, the
// first restart's error comes back regardless of scheduling.
func TestAllRestartsFailedSurfacesFirstError(t *testing.T) {
	orig := runRestart
	defer func() { runRestart = orig }()
	errFirst := errors.New("first failure")
	var calls int
	runRestart = func(context.Context, stagespec.MDACSpec, *pdk.Process, Options) (*Result, int, error) {
		calls++
		if calls == 1 {
			return nil, 5, errFirst
		}
		return nil, 5, errors.New("later failure")
	}
	spec, proc := lateStageSpec(t)
	_, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 29, MaxEvals: 50, Mode: hybrid.EquationOnly, Restarts: 3,
	})
	if !errors.Is(err, errFirst) {
		t.Fatalf("err = %v, want the first restart's error", err)
	}
}

func TestPerturbStaysInBounds(t *testing.T) {
	proc := pdk.TSMC025()
	rng := rand.New(rand.NewSource(9))
	var s opamp.Amp = opamp.MillerSizing{
		W1: 1e-6, L1: 0.5e-6, W3: 1e-6, L3: 0.5e-6, W5: 5e-6, L5: 0.35e-6,
		KTail: 4, K2: 8, IRef: 20e-6, CC: 0.3e-12, RZ: 500,
	}
	for i := 0; i < 500; i++ {
		s = perturb(rng, s, 1.0, proc)
		ms := s.(opamp.MillerSizing)
		if ms.W1 < proc.WMin || ms.W1 > proc.WMax || ms.L1 < proc.LMin || ms.L1 > proc.LMax {
			t.Fatalf("geometry escaped bounds: %+v", ms)
		}
		if ms.IRef <= 0 || ms.CC <= 0 || ms.RZ <= 0 {
			t.Fatalf("non-positive electricals: %+v", ms)
		}
	}
}

func TestEquationModeSynthesisIsCheap(t *testing.T) {
	// Equation-only synthesis must run a large budget quickly and still
	// produce a sane sizing (this is the speed end of the paper's
	// trade-off).
	spec, proc := lateStageSpec(t)
	res, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 11, MaxEvals: 2000, PatternIter: 400, Mode: hybrid.EquationOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Power <= 0 || res.Metrics.Power > 50e-3 {
		t.Fatalf("equation-mode power = %g", res.Metrics.Power)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.MaxEvals != 400 || o.InitTemp != 2 || o.PatternIter != 120 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	warm := Options{WarmStart: opamp.MillerSizing{}}
	warm.defaults()
	if warm.MaxEvals >= 400 || warm.InitTemp >= 2 {
		t.Fatalf("warm-start defaults must shrink the schedule: %+v", warm)
	}
}

// TestWarmStartTinyBudgetClamped: the warm-start schedule shrink used to
// integer-divide MaxEvals to zero for any retarget budget under 8, so
// exactly the cheap low-fidelity runs the racing rungs issue lost their
// entire annealing allowance without a word. The shrink must clamp to at
// least one evaluation, and the full pipeline must survive a MaxEvals=4
// warm-started run.
func TestWarmStartTinyBudgetClamped(t *testing.T) {
	o := Options{MaxEvals: 4, WarmStart: opamp.MillerSizing{}}
	o.defaults()
	if o.MaxEvals < 1 {
		t.Fatalf("warm-start shrink zeroed the annealing budget: MaxEvals = %d", o.MaxEvals)
	}

	spec, proc := lateStageSpec(t)
	cold, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 5, MaxEvals: 120, PatternIter: 60, Mode: hybrid.EquationOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 6, MaxEvals: 4, PatternIter: 8, Mode: hybrid.EquationOnly,
		WarmStart: cold.Sizing,
	})
	if err != nil {
		t.Fatalf("MaxEvals=4 warm-started run failed: %v", err)
	}
	if warm.Evals == 0 {
		t.Fatal("tiny warm-started run recorded no evaluations")
	}
}

func TestSynthesizeTelescopicTopology(t *testing.T) {
	// The sizing engine is topology-generic: a relaxed late stage
	// synthesizes with the telescopic cascode through the full hybrid
	// flow (DC bias, Mason loop TF, transient settling).
	adc := stagespec.ADCSpec{Bits: 10, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	spec := specs[3] // fourth stage: low gain requirement suits the telescopic
	proc := pdk.TSMC025()
	res, err := Synthesize(context.Background(), spec, proc, Options{
		Seed: 13, MaxEvals: 120, PatternIter: 60,
		Mode: hybrid.Hybrid, Topology: opamp.Telescopic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizing.Topology() != opamp.Telescopic {
		t.Fatalf("result topology = %s", res.Sizing.Topology())
	}
	if res.Metrics.Power <= 0 {
		t.Fatalf("power = %g", res.Metrics.Power)
	}
	if res.Metrics.AmpGain < 50 {
		t.Fatalf("telescopic gain %g implausibly low", res.Metrics.AmpGain)
	}
	if !res.Metrics.Settled {
		t.Fatalf("telescopic stage did not settle: %+v", res.Report.Failures)
	}
}

// TestSynthesizeBatchEvalDeterministic: batched annealing draws its
// perturbations sequentially from the incumbent and folds acceptance in
// index order, so a fixed seed must reproduce the result exactly even
// though candidates share one simulation kernel.
func TestSynthesizeBatchEvalDeterministic(t *testing.T) {
	spec, proc := lateStageSpec(t)
	opts := Options{
		Seed: 11, MaxEvals: 80, PatternIter: 40,
		Mode: hybrid.Hybrid, BatchEval: 4,
	}
	first, err := Synthesize(context.Background(), spec, proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Synthesize(context.Background(), spec, proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock fields are the only sanctioned nondeterminism.
	first.Metrics.DCTime, first.Metrics.TFTime, first.Metrics.TranTime = 0, 0, 0
	second.Metrics.DCTime, second.Metrics.TFTime, second.Metrics.TranTime = 0, 0, 0
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("batched synthesis not deterministic:\n%+v\nvs\n%+v", first, second)
	}
	if first.Evals == 0 {
		t.Fatal("no evaluations recorded")
	}
}
