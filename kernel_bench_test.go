// End-to-end kernel benchmarks on an MDAC-sized circuit: the hold and
// loop netlists of a real pipeline stage (the same circuits the hybrid
// evaluator solves on every synthesis iteration). These are the numbers
// the allocation-free kernel path is accountable to; `make bench` runs
// them together with the per-package kernel benchmarks and writes
// BENCH_kernels.json.
package pipesyn_test

import (
	"context"
	"testing"

	"pipesyn/internal/core"
	"pipesyn/internal/enum"
	"pipesyn/internal/hybrid"
	"pipesyn/internal/mdac"
	"pipesyn/internal/netlist"
	"pipesyn/internal/opamp"
	"pipesyn/internal/pdk"
	"pipesyn/internal/sim"
	"pipesyn/internal/stagespec"
	"pipesyn/internal/synth"
)

// benchStage builds a representative second-stage MDAC of a 12-bit
// 40 MSPS pipeline with the designer-equation initial sizing.
func benchStage(b *testing.B) mdac.Stage {
	b.Helper()
	proc := pdk.TSMC025()
	adc := stagespec.ADCSpec{Bits: 12, SampleRate: 40e6, VRef: 1}
	specs, err := stagespec.Translate(adc, enum.Config{3, 2, 2, 2, 2})
	if err != nil {
		b.Fatal(err)
	}
	sp := specs[1]
	sz := opamp.InitialSizing(proc, opamp.BlockSpec{
		GBW: sp.GBWMin, SR: sp.SRMin, CLoad: sp.CLoad, CFeed: sp.CFeed,
		Gain: sp.GainMin, Swing: sp.SwingMin,
	})
	return mdac.Stage{Spec: sp, Sizing: sz, Process: proc}
}

func benchHold(b *testing.B) *netlist.Circuit {
	b.Helper()
	hold, err := benchStage(b).HoldCircuit()
	if err != nil {
		b.Fatal(err)
	}
	return hold
}

// BenchmarkOP is the DC-Newton leg: operating point of the closed-loop
// hold circuit (gmin ladder and source stepping included when needed).
func BenchmarkOP(b *testing.B) {
	hold := benchHold(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.OP(hold, sim.DCOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranSettle is the transient leg: the worst-case residue step
// over the same settling window the hybrid evaluator uses, on the
// symbolic-factorization + modified-Newton (Shamanskii) solver path.
func BenchmarkTranSettle(b *testing.B) {
	st := benchStage(b)
	hold := benchHold(b)
	window := st.Spec.TSlew + st.Spec.TSettle
	opts := sim.TranOpts{
		TStop:       mdac.StepDelay + 1.5*window,
		TStep:       window / 400,
		NewtonReuse: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Tran(hold, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranSettleFullNewton is the same transient on the default
// full-Newton path (factor every iteration; bit-identical to the
// historical dense solver).
func BenchmarkTranSettleFullNewton(b *testing.B) {
	st := benchStage(b)
	hold := benchHold(b)
	window := st.Spec.TSlew + st.Spec.TSettle
	opts := sim.TranOpts{
		TStop: mdac.StepDelay + 1.5*window,
		TStep: window / 400,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Tran(hold, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudy13b is the full-study number the batched kernel path is
// accountable to: a 13-bit designer-driven study on a tiny evaluation
// budget with the annealer's batched moves (BatchEval) and the
// reuse-Newton solver both enabled — every hot path this package's
// kernel benchmarks measure in isolation, composed end to end.
func BenchmarkStudy13b(b *testing.B) {
	opts := core.Options{
		Bits: 13, SampleRate: 40e6, Mode: hybrid.Hybrid,
		Synth: synth.Options{
			Seed: 7, MaxEvals: 12, PatternIter: 6,
			BatchEval: 4, NewtonReuse: true,
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudy13bRacing is BenchmarkStudy13b under the
// successive-halving racing scheduler: the wall-clock and
// evals-to-feasible numbers the racing search path is accountable to.
// "cold" starts from nothing; "warm" replays through a primed
// content-addressed cache (the daemon's steady state).
func BenchmarkStudy13bRacing(b *testing.B) {
	mk := func() core.Options {
		return core.Options{
			Bits: 13, SampleRate: 40e6, Mode: hybrid.Hybrid, Race: true,
			Synth: synth.Options{
				Seed: 7, MaxEvals: 12, PatternIter: 6,
				BatchEval: 4, NewtonReuse: true,
			},
		}
	}
	report := func(b *testing.B, st *core.Study) {
		b.ReportMetric(float64(st.TotalEvals), "evals/study")
		toFeasible := 0
		for _, m := range st.MDACs {
			toFeasible += m.Result.EvalsToFeasible
		}
		b.ReportMetric(float64(toFeasible), "evalsToFeasible/study")
	}
	b.Run("cold", func(b *testing.B) {
		var st *core.Study
		for i := 0; i < b.N; i++ {
			var err error
			if st, err = core.Optimize(context.Background(), mk()); err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
	})
	b.Run("warm", func(b *testing.B) {
		cache, err := synth.NewCache(0, "")
		if err != nil {
			b.Fatal(err)
		}
		prime := mk()
		prime.Synth.Cache = cache
		if _, err := core.Optimize(context.Background(), prime); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var st *core.Study
		for i := 0; i < b.N; i++ {
			o := mk()
			o.Synth.Cache = cache
			if st, err = core.Optimize(context.Background(), o); err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
		b.ReportMetric(float64(st.CacheHits), "cacheHits/study")
	})
}

// BenchmarkACSweep is the swept small-signal leg (the SimOnly
// transfer-function path): 40 points/decade over 1 kHz – 100 GHz on the
// broken-loop netlist.
func BenchmarkACSweep(b *testing.B) {
	st := benchStage(b)
	loop, err := st.LoopCircuit(1e-15)
	if err != nil {
		b.Fatal(err)
	}
	op, err := sim.OP(loop, sim.DCOpts{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.AC(loop, op, sim.ACOpts{FStart: 1e3, FStop: 100e9, PointsPerDecade: 40}); err != nil {
			b.Fatal(err)
		}
	}
}
