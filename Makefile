# Build/test/verification lanes. `make ci` is the gate the parallel
# scheduler must keep green: vet + full tests + the race-detector lane.
GO ?= go

.PHONY: build test vet race bench benchdiff bench-figures serve-smoke recover-smoke yield-smoke cluster-smoke persist ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race lane: short mode keeps the seconds-long hybrid studies out, while
# the scheduler, cache, and parallel-study tests all still run under the
# detector. The service package runs in full — its queue, single-flight,
# and drain paths are the raciest code in the tree.
race:
	$(GO) test -race -short ./...
	$(GO) test -race -run 'Cancel|Fault|Leak' ./...
	$(GO) test -race ./internal/service
	$(GO) test -race ./internal/yield ./internal/adcsim ./internal/dsp
	$(GO) test -race ./internal/race
	$(GO) test -race -run 'Race|Surrogate' ./internal/synth ./internal/core ./internal/service

# Service integration smoke: boot adcsynd, run a study over HTTP with a
# cached rerun and a /metrics scrape, SIGTERM, assert clean drain — then
# the crash-recovery leg (see recover-smoke).
serve-smoke:
	./scripts/serve_smoke.sh

# Crash-recovery smoke only: boot with -state-dir, kill -9 mid-study,
# restart, assert the same job is recovered and completes.
recover-smoke:
	SMOKE_LEG=recover ./scripts/serve_smoke.sh

# Monte-Carlo yield smoke only: the same 200-draw mode:yield study on two
# daemons with different -workers must produce bit-identical results.
yield-smoke:
	SMOKE_LEG=yield ./scripts/serve_smoke.sh

# Sharded-cluster smoke: three nodes on loopback — consistent-hash
# routing with cluster-wide dedupe, a zero-evaluation peer-cache run on
# a cold node, bit-identical results vs a single-node daemon, and a
# kill -9 lease takeover that finishes the same job id on a survivor.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Persistence lane: journal replay, crash recovery, retention/leak, and
# cache-durability tests under the race detector.
persist:
	$(GO) test -race -run 'Recover|Retention|Retain|Journal|RetryAfter|Leak|CacheDisk' ./internal/service ./internal/synth

# Kernel/evaluator benchmark lane: the la factor/solve kernels (dense,
# sparse, and ordered), the compiled transfer-function evaluator, the
# sim analyses, the batched hybrid evaluator, and the end-to-end MDAC
# operating-point/settling/AC/full-study benchmarks, recorded as go-test
# JSON events in BENCH_kernels.json for before/after comparison. The
# benchfilter pipe strips run-volatile fields (timestamps, elapsed
# seconds, iteration counts) so the committed snapshot diffs cleanly.
bench:
	$(GO) test -json -bench=. -benchmem -run='^$$' \
		./internal/la ./internal/expr ./internal/sim ./internal/hybrid \
		| ./scripts/benchfilter.sh > BENCH_kernels.json
	$(GO) test -json -bench='^Benchmark(OP|TranSettle|TranSettleFullNewton|ACSweep|Study13b|Study13bRacing)$$' -benchmem -run='^$$' . \
		| ./scripts/benchfilter.sh >> BENCH_kernels.json
	@grep -F 'ns/op' BENCH_kernels.json \
		| sed -E 's/.*"Test":"([^"]*)".*"Output":"(\1)? *([^"]*)\\n"\}/\1\t\3/; s/\\t/   /g'

# Advisory perf gate: rerun the benchmark set and compare against the
# committed BENCH_kernels.json, warning on >10% ns/op regressions.
# Always exits 0 (shared CI boxes are noisy); BENCHDIFF_STRICT=1 makes
# regressions fatal for local use.
benchdiff:
	./scripts/benchdiff.sh

# Paper-figure benchmarks (root package only, human-readable).
bench-figures:
	$(GO) test -bench=. -benchmem -run='^$$' .

ci: vet test race persist serve-smoke cluster-smoke
