# Build/test/verification lanes. `make ci` is the gate the parallel
# scheduler must keep green: vet + full tests + the race-detector lane.
GO ?= go

.PHONY: build test vet race bench ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race lane: short mode keeps the seconds-long hybrid studies out, while
# the scheduler, cache, and parallel-study tests all still run under the
# detector.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

ci: vet test race
