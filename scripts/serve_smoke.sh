#!/bin/sh
# Boots adcsynd, runs one tiny equation-mode study over HTTP end to end,
# asserts the result and a /metrics scrape, then SIGTERMs the daemon and
# checks it drains cleanly. This is the serving layer's integration
# smoke: `make serve-smoke` and the ci.sh service lane both run it.
set -eu

PORT="${ADCSYND_PORT:-18650}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
LOG="$TMP/adcsynd.log"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/adcsynd" ./cmd/adcsynd

"$TMP/adcsynd" -addr "127.0.0.1:$PORT" -queue 4 -workers 2 \
  -cache-dir "$TMP/cache" -drain-timeout 10s >"$LOG" 2>&1 &
PID=$!

# Wait for readiness.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve-smoke: daemon never became healthy" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done

# Submit a tiny 10-bit equation-mode study.
SUBMIT=$(curl -sf -X POST "$BASE/v1/studies" \
  -d '{"bits":10,"mode":"equation","evals":10,"pattern":8,"seed":5}')
ID=$(echo "$SUBMIT" | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || { echo "serve-smoke: bad submit: $SUBMIT" >&2; exit 1; }

# The NDJSON event stream runs until the job is terminal; its last line
# must be the done event carrying the result.
LAST=$(curl -sf --max-time 60 "$BASE/v1/studies/$ID/events" | tail -n 1)
echo "$LAST" | jq -e '.kind == "done" and .result.bits == 10 and (.result.best.config | length) > 0' >/dev/null \
  || { echo "serve-smoke: bad terminal event: $LAST" >&2; exit 1; }

# Status agrees, with a real result and evaluator spend.
STATUS=$(curl -sf "$BASE/v1/studies/$ID")
echo "$STATUS" | jq -e '.state == "done" and .result.totalEvals > 0' >/dev/null \
  || { echo "serve-smoke: bad status: $STATUS" >&2; exit 1; }

# An identical re-submission replays from the synthesis cache.
ID2=$(curl -sf -X POST "$BASE/v1/studies" \
  -d '{"bits":10,"mode":"equation","evals":10,"pattern":8,"seed":5}' | jq -r .id)
i=0
until curl -sf "$BASE/v1/studies/$ID2" | jq -e '.state == "done"' >/dev/null; do
  i=$((i + 1)); [ "$i" -le 100 ] || { echo "serve-smoke: rerun never finished" >&2; exit 1; }
  sleep 0.1
done
curl -sf "$BASE/v1/studies/$ID2" | jq -e '.result.cacheHits > 0 and .result.cacheMisses == 0' >/dev/null \
  || { echo "serve-smoke: rerun was not served from the cache" >&2; exit 1; }

# Metrics scrape exposes jobs, queue, pool, cache, and eval histogram.
METRICS=$(curl -sf "$BASE/metrics")
for want in \
  'adcsynd_jobs_total{event="accepted"} 2' \
  'adcsynd_jobs{state="done"} 2' \
  'adcsynd_queue_depth 0' \
  'adcsynd_synth_cache_hits_total' \
  'adcsynd_eval_duration_seconds_count'; do
  echo "$METRICS" | grep -qF "$want" \
    || { echo "serve-smoke: /metrics missing: $want" >&2; echo "$METRICS" >&2; exit 1; }
done

# Graceful drain: SIGTERM, clean exit, the log says so.
kill -TERM "$PID"
WAITED=0
while kill -0 "$PID" 2>/dev/null; do
  WAITED=$((WAITED + 1))
  [ "$WAITED" -le 100 ] || { echo "serve-smoke: daemon hung on SIGTERM" >&2; exit 1; }
  sleep 0.1
done
wait "$PID" 2>/dev/null || { echo "serve-smoke: non-zero exit on drain" >&2; cat "$LOG" >&2; exit 1; }
grep -q "drained cleanly" "$LOG" || { echo "serve-smoke: no clean-drain marker" >&2; cat "$LOG" >&2; exit 1; }

echo "serve-smoke: ok (study $ID, cached rerun $ID2, clean drain)"
