#!/bin/sh
# adcsynd integration smoke, two legs:
#
#   main     boot, run one tiny equation-mode study over HTTP end to end,
#            assert the result + a /metrics scrape, SIGTERM, clean drain.
#   recover  boot with -state-dir, submit a multi-second hybrid study,
#            kill -9 mid-run, restart on the same state dir, and assert
#            the SAME job id is re-enqueued (recovered event in its
#            NDJSON stream, recovered counter on /metrics) and completes
#            without resubmission.
#   yield    run the same 200-draw mode:yield study on two daemons with
#            different -workers and assert the Monte-Carlo results are
#            bit-identical, yield_chunk progress streams, the yield
#            counters land on /metrics — and (on boxes with >= 4 cores)
#            that 8 workers beat 1 worker by >= 2x wall clock.
#
# SMOKE_LEG selects: all (default), main, recover, or yield. `make
# serve-smoke` runs every leg; `make recover-smoke` and the ci.sh
# persistence lane run the recovery leg.
set -eu

PORT="${ADCSYND_PORT:-18650}"
BASE="http://127.0.0.1:$PORT"
LEG="${SMOKE_LEG:-all}"
TMP="$(mktemp -d)"
PID=""
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/adcsynd" ./cmd/adcsynd

wait_healthy() {
  i=0
  until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "serve-smoke: daemon never became healthy" >&2
      cat "$1" >&2
      exit 1
    fi
    sleep 0.1
  done
}

wait_state() { # id want max_iterations log
  i=0
  until curl -sf "$BASE/v1/studies/$1" | jq -e ".state == \"$2\"" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le "$3" ] || { echo "serve-smoke: job $1 never reached $2" >&2; cat "$4" >&2; exit 1; }
    sleep 0.1
  done
}

sigterm_drain() { # pid log
  kill -TERM "$1"
  WAITED=0
  while kill -0 "$1" 2>/dev/null; do
    WAITED=$((WAITED + 1))
    [ "$WAITED" -le 200 ] || { echo "serve-smoke: daemon hung on SIGTERM" >&2; exit 1; }
    sleep 0.1
  done
  wait "$1" 2>/dev/null || { echo "serve-smoke: non-zero exit on drain" >&2; cat "$2" >&2; exit 1; }
  grep -q "drained cleanly" "$2" || { echo "serve-smoke: no clean-drain marker" >&2; cat "$2" >&2; exit 1; }
}

main_leg() {
  LOG="$TMP/adcsynd.log"
  "$TMP/adcsynd" -addr "127.0.0.1:$PORT" -queue 4 -workers 2 \
    -cache-dir "$TMP/cache" -drain-timeout 10s >"$LOG" 2>&1 &
  PID=$!
  wait_healthy "$LOG"

  # Submit a tiny 10-bit equation-mode study.
  SUBMIT=$(curl -sf -X POST "$BASE/v1/studies" -H 'Content-Type: application/json' \
    -d '{"bits":10,"mode":"equation","evals":10,"pattern":8,"seed":5}')
  ID=$(echo "$SUBMIT" | jq -r .id)
  [ -n "$ID" ] && [ "$ID" != null ] || { echo "serve-smoke: bad submit: $SUBMIT" >&2; exit 1; }

  # The NDJSON event stream runs until the job is terminal; its last line
  # must be the done event carrying the result.
  LAST=$(curl -sf --max-time 60 "$BASE/v1/studies/$ID/events" | tail -n 1)
  echo "$LAST" | jq -e '.kind == "done" and .result.bits == 10 and (.result.best.config | length) > 0' >/dev/null \
    || { echo "serve-smoke: bad terminal event: $LAST" >&2; exit 1; }

  # Status agrees, with a real result and evaluator spend.
  STATUS=$(curl -sf "$BASE/v1/studies/$ID")
  echo "$STATUS" | jq -e '.state == "done" and .result.totalEvals > 0' >/dev/null \
    || { echo "serve-smoke: bad status: $STATUS" >&2; exit 1; }

  # An identical re-submission replays from the synthesis cache.
  ID2=$(curl -sf -X POST "$BASE/v1/studies" -H 'Content-Type: application/json' \
    -d '{"bits":10,"mode":"equation","evals":10,"pattern":8,"seed":5}' | jq -r .id)
  wait_state "$ID2" done 100 "$LOG"
  curl -sf "$BASE/v1/studies/$ID2" | jq -e '.result.cacheHits > 0 and .result.cacheMisses == 0' >/dev/null \
    || { echo "serve-smoke: rerun was not served from the cache" >&2; exit 1; }

  # The state-filtered listing sees both terminal jobs.
  curl -sf "$BASE/v1/jobs?state=done" | jq -e '.jobs | length == 2' >/dev/null \
    || { echo "serve-smoke: state filter lost jobs" >&2; exit 1; }

  # Metrics scrape exposes jobs, queue, pool, cache, retention, and the
  # eval histogram.
  METRICS=$(curl -sf "$BASE/metrics")
  for want in \
    'adcsynd_jobs_total{event="accepted"} 2' \
    'adcsynd_jobs{state="done"} 2' \
    'adcsynd_jobs_retained 2' \
    'adcsynd_queue_depth 0' \
    'adcsynd_synth_cache_hits_total' \
    'adcsynd_eval_duration_seconds_count'; do
    echo "$METRICS" | grep -qF "$want" \
      || { echo "serve-smoke: /metrics missing: $want" >&2; echo "$METRICS" >&2; exit 1; }
  done

  sigterm_drain "$PID" "$LOG"
  PID=""
  echo "serve-smoke: main leg ok (study $ID, cached rerun $ID2, clean drain)"
}

recover_leg() {
  STATE="$TMP/state"
  RLOG="$TMP/recover1.log"
  "$TMP/adcsynd" -addr "127.0.0.1:$PORT" -queue 4 -workers 2 \
    -cache-dir "$TMP/rcache" -state-dir "$STATE" -drain-timeout 10s >"$RLOG" 2>&1 &
  PID=$!
  wait_healthy "$RLOG"

  # A hybrid study big enough to still be mid-flight when the SIGKILL
  # lands (several seconds of simulation-backed evaluations).
  RID=$(curl -sf -X POST "$BASE/v1/studies" -H 'Content-Type: application/json' \
    -d '{"bits":10,"mode":"hybrid","evals":60,"pattern":30,"seed":7}' | jq -r .id)
  [ -n "$RID" ] && [ "$RID" != null ] || { echo "serve-smoke: bad recovery submit" >&2; exit 1; }
  wait_state "$RID" running 100 "$RLOG"

  # Crash: no drain, no warning — the journal alone carries the job.
  kill -9 "$PID"
  wait "$PID" 2>/dev/null || true
  PID=""

  RLOG2="$TMP/recover2.log"
  "$TMP/adcsynd" -addr "127.0.0.1:$PORT" -queue 4 -workers 2 \
    -cache-dir "$TMP/rcache" -state-dir "$STATE" -drain-timeout 10s >"$RLOG2" 2>&1 &
  PID=$!
  wait_healthy "$RLOG2"
  grep -q "journal replay" "$RLOG2" || { echo "serve-smoke: restart did not replay the journal" >&2; cat "$RLOG2" >&2; exit 1; }

  # The SAME job id is back — no resubmission — and its event stream
  # opens with the recovered marker.
  curl -sf "$BASE/v1/studies/$RID" >/dev/null \
    || { echo "serve-smoke: job $RID lost across the crash" >&2; cat "$RLOG2" >&2; exit 1; }
  wait_state "$RID" done 600 "$RLOG2"
  curl -sf --max-time 30 "$BASE/v1/studies/$RID/events" | head -n 1 \
    | jq -e '.kind == "recovered"' >/dev/null \
    || { echo "serve-smoke: no recovered event on $RID" >&2; exit 1; }
  curl -sf "$BASE/v1/studies/$RID" | jq -e '.state == "done" and .result.totalEvals > 0' >/dev/null \
    || { echo "serve-smoke: recovered job has no result" >&2; exit 1; }
  curl -sf "$BASE/metrics" | grep -qF 'adcsynd_jobs_total{event="recovered"} 1' \
    || { echo "serve-smoke: recovered counter missing" >&2; exit 1; }

  sigterm_drain "$PID" "$RLOG2"
  PID=""
  echo "serve-smoke: recovery leg ok (study $RID survived kill -9)"
}

yield_leg() {
  YREQ='{"bits":8,"mode":"yield","evals":8,"pattern":6,"seed":3,"draws":200}'

  # run_yield workers out_json out_secs_var: boot a daemon, run the study,
  # capture the canonicalized yield result and the job wall clock.
  run_yield() { # workers json_out log
    "$TMP/adcsynd" -addr "127.0.0.1:$PORT" -queue 4 -workers "$1" \
      -cache-dir "$TMP/ycache-$1" -drain-timeout 10s >"$3" 2>&1 &
    PID=$!
    wait_healthy "$3"
    T0=$(date +%s)
    YID=$(curl -sf -X POST "$BASE/v1/studies" -H 'Content-Type: application/json' -d "$YREQ" | jq -r .id)
    [ -n "$YID" ] && [ "$YID" != null ] || { echo "serve-smoke: bad yield submit" >&2; exit 1; }
    wait_state "$YID" done 600 "$3"
    T1=$(date +%s)
    YSECS=$((T1 - T0))

    # The result carries the distributions; strip nothing — the whole
    # yield object must match bit for bit across worker counts.
    curl -sf "$BASE/v1/studies/$YID" \
      | jq -S '.result | {mode, best: .best.config, yield: .yield}' >"$2"
    jq -e '.mode == "yield" and .yield.draws == 200 and .yield.enob.min <= .yield.enob.max' "$2" >/dev/null \
      || { echo "serve-smoke: implausible yield result:" >&2; cat "$2" >&2; exit 1; }

    # Chunk-granular progress reached the NDJSON stream.
    curl -sf --max-time 60 "$BASE/v1/studies/$YID/events" | grep -q '"yield_chunk"' \
      || { echo "serve-smoke: no yield_chunk events on $YID" >&2; exit 1; }

    # The draw counters and ENOB histogram landed on /metrics.
    YMETRICS=$(curl -sf "$BASE/metrics")
    echo "$YMETRICS" | grep -qF 'adcsynd_yield_enob_count 200' \
      || { echo "serve-smoke: yield histogram missing from /metrics" >&2; echo "$YMETRICS" | grep adcsynd_yield >&2; exit 1; }
    echo "$YMETRICS" | grep -q 'adcsynd_yield_draws_total{result="pass"} [0-9]' \
      || { echo "serve-smoke: yield draw counter missing from /metrics" >&2; exit 1; }

    sigterm_drain "$PID" "$3"
    PID=""
  }

  run_yield 1 "$TMP/yield-w1.json" "$TMP/yield1.log"
  SERIAL_SECS=$YSECS
  run_yield 8 "$TMP/yield-w8.json" "$TMP/yield8.log"
  PARALLEL_SECS=$YSECS

  cmp -s "$TMP/yield-w1.json" "$TMP/yield-w8.json" \
    || { echo "serve-smoke: yield result differs across worker counts" >&2; \
         diff "$TMP/yield-w1.json" "$TMP/yield-w8.json" >&2 || true; exit 1; }

  # Parallel speedup is only a fair ask when the box has cores to spend;
  # CI containers with 1-2 CPUs run the determinism half only.
  CORES=$(nproc 2>/dev/null || echo 1)
  if [ "$CORES" -ge 4 ]; then
    [ $((PARALLEL_SECS * 2)) -le "$SERIAL_SECS" ] \
      || { echo "serve-smoke: 8 workers took ${PARALLEL_SECS}s vs ${SERIAL_SECS}s serial (want >= 2x)" >&2; exit 1; }
  fi
  echo "serve-smoke: yield leg ok (200 draws bit-identical at 1 vs 8 workers; ${SERIAL_SECS}s vs ${PARALLEL_SECS}s on $CORES cores)"
}

case "$LEG" in
all) main_leg; recover_leg; yield_leg ;;
main) main_leg ;;
recover) recover_leg ;;
yield) yield_leg ;;
*) echo "serve-smoke: unknown SMOKE_LEG=$LEG (want all, main, recover, or yield)" >&2; exit 2 ;;
esac
echo "serve-smoke: ok"
