#!/bin/sh
# Compare a fresh benchmark run against the committed baseline in
# BENCH_kernels.json and warn on per-benchmark ns/op regressions above
# the threshold (default 10%). Advisory by default: the script always
# exits 0 so a noisy CI box cannot fail the gate — set
# BENCHDIFF_STRICT=1 to turn regressions into a failure locally.
#
# Environment:
#   BENCHDIFF_BASE       baseline file       (default BENCH_kernels.json)
#   BENCHDIFF_BENCHTIME  fresh-run benchtime (default 1s, the `make bench`
#                        setting; lower it for a quick smoke diff)
#   BENCHDIFF_THRESHOLD  warn percentage     (default 10)
#   BENCHDIFF_STRICT     exit 1 on regressions when set to 1
set -eu

BASE=${BENCHDIFF_BASE:-BENCH_kernels.json}
BENCHTIME=${BENCHDIFF_BENCHTIME:-1s}
THRESHOLD=${BENCHDIFF_THRESHOLD:-10}
STRICT=${BENCHDIFF_STRICT:-0}

if [ ! -f "$BASE" ]; then
    echo "benchdiff: baseline $BASE not found (run 'make bench' and commit it)" >&2
    exit 1
fi

fresh=$(mktemp) && base_tbl=$(mktemp) && fresh_tbl=$(mktemp)
trap 'rm -f "$fresh" "$base_tbl" "$fresh_tbl"' EXIT

echo "benchdiff: fresh run (benchtime $BENCHTIME)..." >&2
# Mirror the `make bench` package set, filters, and volatile-field strip.
filter=$(dirname "$0")/benchfilter.sh
go test -json -bench=. -benchmem -run='^$' -benchtime "$BENCHTIME" \
    ./internal/la ./internal/expr ./internal/sim ./internal/hybrid | "$filter" > "$fresh"
go test -json -bench='^Benchmark(OP|TranSettle|TranSettleFullNewton|ACSweep|Study13b)$' \
    -benchmem -run='^$' -benchtime "$BENCHTIME" . | "$filter" >> "$fresh"

# Extract "pkg/BenchmarkName ns_op" pairs from go-test JSON events.
extract() {
    grep -F 'ns/op' "$1" | awk '
        {
            if (!match($0, /"Package":"[^"]*"/)) next
            pkg = substr($0, RSTART + 11, RLENGTH - 12)
            if (!match($0, /"Test":"[^"]*"/)) next
            name = substr($0, RSTART + 8, RLENGTH - 9)
            if (!match($0, /[0-9][0-9.]* ns\/op/)) next
            v = substr($0, RSTART, RLENGTH - 6)
            print pkg "/" name, v
        }'
}

extract "$BASE" > "$base_tbl"
extract "$fresh" > "$fresh_tbl"

awk -v thresh="$THRESHOLD" '
    NR == FNR { base[$1] = $2; next }
    {
        if (!($1 in base)) { printf "  new      %-60s %12.0f ns/op\n", $1, $2; next }
        b = base[$1]; f = $2
        pct = (f - b) / b * 100
        tag = "ok"
        if (pct > thresh)  { tag = "REGRESSED"; bad++ }
        if (pct < -thresh) { tag = "improved" }
        printf "  %-9s %-60s %12.0f -> %12.0f ns/op  %+6.1f%%\n", tag, $1, b, f, pct
        seen[$1] = 1
    }
    END {
        for (k in base) if (!(k in seen))
            printf "  gone     %-60s (in baseline, not in fresh run)\n", k
        if (bad) printf "benchdiff: %d benchmark(s) regressed more than %s%%\n", bad, thresh
        else printf "benchdiff: no regressions above %s%%\n", thresh
        exit bad ? 3 : 0
    }' "$base_tbl" "$fresh_tbl" || status=$?

if [ "${status:-0}" -eq 3 ] && [ "$STRICT" = "1" ]; then
    exit 1
fi
exit 0
