#!/bin/sh
# Normalize `go test -json` benchmark output for committing: strip the
# fields that change on every run even when performance does not — the
# per-event timestamps, the package elapsed seconds, and the benchmark
# iteration counts — so a `git diff BENCH_kernels.json` after
# `make bench` shows only real ns/op and allocation movement.
#
# Reads stdin, writes stdout; `make bench` and scripts/benchdiff.sh pipe
# through it at record time.
exec sed -E \
    -e 's/"Time":"[^"]*",//' \
    -e 's/,"Elapsed":[0-9.eE+-]+//' \
    -e '/ns\/op/ s/"Output":" *[0-9]+\\t/"Output":"/' \
    -e '/ns\/op/ s/\\t *[0-9]+(\\t *[0-9.]+ ns\/op)/\1/' \
    -e 's/(\\t)[0-9]+\.[0-9]+s(\\n")/\1\2/'
