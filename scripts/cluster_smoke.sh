#!/bin/sh
# Three-node adcsynd cluster smoke on loopback. Asserts the sharded
# daemon's whole contract end to end:
#
#   dedupe    the same study submitted to two different nodes routes to
#             one ring owner and executes ONCE (eval accounting: exactly
#             one node spends evaluations; the twin submit answers 200
#             with deduped=true and the same job id).
#   fill      after the owner computes, a forced-local re-run on a cold
#             node (X-Adcsyn-Forwarded pins execution) is served
#             entirely by the peer cache tier: totalEvals == 0.
#   takeover  kill -9 the node that owns a running study; its lease
#             expires, a ring successor re-enqueues the SAME job id via
#             the recovery path (stream opens with a recovered event),
#             and the job completes on a survivor.
#   identical the cluster's result matches a plain single-node daemon's
#             result for the same study, bit for bit (design content).
set -eu

P1="${ADCSYND_CLUSTER_PORT:-18670}"
P2=$((P1 + 1))
P3=$((P1 + 2))
PSOLO=$((P1 + 3))
U1="http://127.0.0.1:$P1"
U2="http://127.0.0.1:$P2"
U3="http://127.0.0.1:$P3"
PEERS="$U1,$U2,$U3"
TMP="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

go build -o "$TMP/adcsynd" ./cmd/adcsynd

start_node() { # port log
  "$TMP/adcsynd" -addr "127.0.0.1:$1" -node "http://127.0.0.1:$1" -peers "$PEERS" \
    -vnodes 16 -lease 2s -heartbeat 200ms -queue 8 -workers 2 \
    -cache-dir "$TMP/cache-$1" -state-dir "$TMP/state-$1" \
    -drain-timeout 10s >"$2" 2>&1 &
  LAST_PID=$!
  PIDS="$PIDS $LAST_PID"
}

wait_ready() { # base log
  i=0
  until curl -sf "$1/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "cluster-smoke: $1 never became ready" >&2; cat "$2" >&2; exit 1; }
    sleep 0.1
  done
}

submit() { # base body [extra curl args...]
  base=$1; body=$2; shift 2
  curl -sf -X POST "$base/v1/jobs" -H 'Content-Type: application/json' "$@" -d "$body"
}

wait_done() { # base id max_iterations
  i=0
  until curl -s "$1/v1/jobs/$2" | jq -e '.state == "done"' >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le "$3" ] || { echo "cluster-smoke: job $2 never finished via $1" >&2; exit 1; }
    sleep 0.1
  done
}

start_node "$P1" "$TMP/n1.log"; PID1=$LAST_PID
start_node "$P2" "$TMP/n2.log"; PID2=$LAST_PID
start_node "$P3" "$TMP/n3.log"; PID3=$LAST_PID
wait_ready "$U1" "$TMP/n1.log"
wait_ready "$U2" "$TMP/n2.log"
wait_ready "$U3" "$TMP/n3.log"

# Membership converges: every peer up from node 1's point of view.
i=0
until curl -sf "$U1/v1/cluster/status" | jq -e '[.peers[] | select(.alive)] | length == 3' >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -le 50 ] || { echo "cluster-smoke: membership never converged" >&2; curl -s "$U1/v1/cluster/status" >&2; exit 1; }
  sleep 0.1
done

# ---- dedupe: one execution for twin submits to different nodes -------
STUDY='{"bits":10,"mode":"hybrid","evals":40,"pattern":20,"seed":5}'
SUB1=$(submit "$U1" "$STUDY")
ID=$(echo "$SUB1" | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || { echo "cluster-smoke: bad submit: $SUB1" >&2; exit 1; }
SUB2=$(submit "$U2" "$STUDY")
echo "$SUB2" | jq -e --arg id "$ID" '.deduped == true and .id == $id' >/dev/null \
  || { echo "cluster-smoke: twin submit did not dedupe: $SUB2" >&2; exit 1; }
wait_done "$U3" "$ID" 600

OWNER=$(curl -sf "$U3/v1/jobs/$ID" | jq -r .owner)
BUSY=0
for u in "$U1" "$U2" "$U3"; do
  COUNT=$(curl -sf "$u/metrics" | sed -n 's/^adcsynd_eval_duration_seconds_count //p')
  if [ "${COUNT:-0}" -gt 0 ]; then
    BUSY=$((BUSY + 1))
    [ "$u" = "$OWNER" ] || { echo "cluster-smoke: $u spent evaluations but $OWNER owns the job" >&2; exit 1; }
  fi
done
[ "$BUSY" -eq 1 ] || { echo "cluster-smoke: $BUSY nodes executed the study, want exactly 1" >&2; exit 1; }
curl -sf "$U3/v1/jobs/$ID" | jq -S '.result | {best, candidates}' >"$TMP/cluster-result.json"
echo "cluster-smoke: dedupe ok (job $ID executed once, on $OWNER)"

# ---- fill: forced-local on a cold node runs with zero evaluations ----
COLD=""
for u in "$U1" "$U2" "$U3"; do
  [ "$u" = "$OWNER" ] && continue
  COLD=$u
done
# Wait for the asynchronous cache-push replication to quiesce: two
# consecutive scrapes of the cluster-wide sent counter must agree.
PREV=-1
i=0
while :; do
  SENT=0
  for u in "$U1" "$U2" "$U3"; do
    S=$(curl -sf "$u/metrics" | sed -n 's/^adcsynd_cluster_cache_push_total{result="sent"} //p')
    SENT=$((SENT + ${S:-0}))
  done
  [ "$SENT" -gt 0 ] && [ "$SENT" -eq "$PREV" ] && break
  PREV=$SENT
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "cluster-smoke: cache pushes never quiesced (sent=$SENT)" >&2; exit 1; }
  sleep 0.2
done

SUB3=$(submit "$COLD" "$STUDY" -H 'X-Adcsyn-Forwarded: smoke')
ID3=$(echo "$SUB3" | jq -r .id)
wait_done "$COLD" "$ID3" 600
curl -sf "$COLD/v1/jobs/$ID3" \
  | jq -e '.result.totalEvals == 0 and .result.cacheHits > 0' >/dev/null \
  || { echo "cluster-smoke: cold node was not served by the peer cache:" >&2; \
       curl -s "$COLD/v1/jobs/$ID3" | jq .result >&2; exit 1; }
curl -sf "$COLD/metrics" | grep -q '^adcsynd_cluster_cache_fill_hits_total [1-9]' \
  || { echo "cluster-smoke: no peer fill hits recorded on $COLD" >&2; exit 1; }
echo "cluster-smoke: peer-cache fill ok (cold node $COLD: zero evaluations)"

# ---- identical: the cluster's answer matches a single-node daemon ----
"$TMP/adcsynd" -addr "127.0.0.1:$PSOLO" -queue 8 -workers 2 \
  -cache-dir "$TMP/cache-solo" -drain-timeout 10s >"$TMP/solo.log" 2>&1 &
SOLO_PID=$!
PIDS="$PIDS $SOLO_PID"
USOLO="http://127.0.0.1:$PSOLO"
wait_ready "$USOLO" "$TMP/solo.log"
SID=$(submit "$USOLO" "$STUDY" | jq -r .id)
wait_done "$USOLO" "$SID" 600
curl -sf "$USOLO/v1/jobs/$SID" | jq -S '.result | {best, candidates}' >"$TMP/solo-result.json"
cmp -s "$TMP/cluster-result.json" "$TMP/solo-result.json" \
  || { echo "cluster-smoke: cluster result differs from single-node" >&2; \
       diff "$TMP/cluster-result.json" "$TMP/solo-result.json" >&2 || true; exit 1; }
kill -TERM "$SOLO_PID" 2>/dev/null || true
echo "cluster-smoke: results bit-identical to single-node"

# ---- takeover: kill -9 the owner mid-study, a successor finishes -----
STUDY2='{"bits":10,"mode":"hybrid","evals":60,"pattern":30,"seed":7}'
TID=$(submit "$U1" "$STUDY2" | jq -r .id)
i=0
until curl -s "$U1/v1/jobs/$TID" | jq -e '.state == "running"' >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "cluster-smoke: takeover study never started" >&2; exit 1; }
  sleep 0.1
done
TOWNER=$(curl -sf "$U1/v1/jobs/$TID" | jq -r .owner)
case "$TOWNER" in
"$U1") VICTIM=$PID1 ;;
"$U2") VICTIM=$PID2 ;;
"$U3") VICTIM=$PID3 ;;
*) echo "cluster-smoke: unknown owner $TOWNER" >&2; exit 1 ;;
esac
SURVIVOR=""
for u in "$U1" "$U2" "$U3"; do
  [ "$u" = "$TOWNER" ] && continue
  SURVIVOR=$u
done
kill -9 "$VICTIM"
wait "$VICTIM" 2>/dev/null || true
echo "cluster-smoke: killed owner $TOWNER mid-study ($TID)"

# The lease (2s) expires, a survivor re-enqueues the SAME id, finishes.
wait_done "$SURVIVOR" "$TID" 900
NEWOWNER=$(curl -sf "$SURVIVOR/v1/jobs/$TID" | jq -r .owner)
[ "$NEWOWNER" != "$TOWNER" ] && [ -n "$NEWOWNER" ] \
  || { echo "cluster-smoke: finished job still owned by the dead node" >&2; exit 1; }
curl -sf --max-time 30 "$SURVIVOR/v1/jobs/$TID/events" | head -n 1 \
  | jq -e '.kind == "recovered"' >/dev/null \
  || { echo "cluster-smoke: takeover stream does not open with a recovered event" >&2; exit 1; }
TAKEOVERS=0
for u in "$U1" "$U2" "$U3"; do
  [ "$u" = "$TOWNER" ] && continue
  TK=$(curl -sf "$u/metrics" | sed -n 's/^adcsynd_cluster_takeovers_total //p')
  TAKEOVERS=$((TAKEOVERS + ${TK:-0}))
done
[ "$TAKEOVERS" -eq 1 ] || { echo "cluster-smoke: $TAKEOVERS takeovers recorded, want 1" >&2; exit 1; }
echo "cluster-smoke: takeover ok (job $TID completed on $NEWOWNER, same id, recovered event)"

echo "cluster-smoke: ok"
